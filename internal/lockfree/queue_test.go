package lockfree

import (
	"sync"
	"testing"
	"testing/quick"

	"ssync/internal/locks"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty queue")
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d, %v", i, v, ok)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestQueueConcurrentMPMC(t *testing.T) {
	q := NewQueue[uint64]()
	const producers, consumers, perP = 4, 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Enqueue(uint64(p)<<32 | uint64(i))
			}
		}()
	}
	var mu sync.Mutex
	seen := map[uint64]bool{}
	lastPerProducer := map[uint64]int64{}
	var consumed int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				done := consumed >= producers*perP
				mu.Unlock()
				if done {
					return
				}
				v, ok := q.Dequeue()
				if !ok {
					continue
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %x dequeued twice", v)
				}
				seen[v] = true
				// Per-producer FIFO: sequence numbers from one producer
				// must be observed in order by the linearized dequeues.
				p, i := v>>32, int64(v&0xffffffff)
				if last, ok := lastPerProducer[p]; ok && i < last {
					// Different consumers may interleave, but the dequeue
					// order we record under the mutex is the linearization
					// order only approximately; skip strictness here and
					// rely on the single-consumer test for FIFO.
					_ = last
				}
				lastPerProducer[p] = i
				consumed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perP {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*perP)
	}
}

func TestQueueSingleConsumerOrder(t *testing.T) {
	q := NewQueue[uint64]()
	const producers, perP = 4, 1500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Enqueue(uint64(p)<<32 | uint64(i))
			}
		}()
	}
	last := map[uint64]int64{0: -1, 1: -1, 2: -1, 3: -1}
	got := 0
	for got < producers*perP {
		v, ok := q.Dequeue()
		if !ok {
			continue
		}
		p, i := v>>32, int64(v&0xffffffff)
		if i <= last[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, i, last[p])
		}
		last[p] = i
		got++
	}
	wg.Wait()
}

func TestStackLIFO(t *testing.T) {
	s := NewStack[string]()
	if _, ok := s.Pop(); ok {
		t.Fatal("pop from empty stack")
	}
	s.Push("a")
	s.Push("b")
	if v, _ := s.Pop(); v != "b" {
		t.Fatalf("got %q, want b", v)
	}
	if v, _ := s.Pop(); v != "a" {
		t.Fatalf("got %q, want a", v)
	}
	if !s.Empty() {
		t.Fatal("stack should be empty")
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	s := NewStack[int]()
	const nG, perG = 6, 2000
	var wg sync.WaitGroup
	var popped int64
	var mu sync.Mutex
	seen := map[int]bool{}
	for g := 0; g < nG; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Push(g*perG + i)
				if v, ok := s.Pop(); ok {
					mu.Lock()
					if seen[v] {
						t.Errorf("value %d popped twice", v)
					}
					seen[v] = true
					popped++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Drain the leftovers.
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice during drain", v)
		}
		seen[v] = true
		popped++
	}
	if popped != nG*perG {
		t.Fatalf("conservation violated: %d pops, want %d", popped, nG*perG)
	}
}

// Property: any single-threaded interleaving of queue ops matches a slice
// reference.
func TestQuickQueueAgainstSlice(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewQueue[int16]()
		var ref []int16
		for _, op := range ops {
			if op >= 0 {
				q.Enqueue(op)
				ref = append(ref, op)
			} else {
				v, ok := q.Dequeue()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != ref[0] {
					return false
				}
				ref = ref[1:]
			}
		}
		return q.Empty() == (len(ref) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedQueueBaseline(t *testing.T) {
	q := NewLockedQueue[int](locks.Locker{L: locks.New(locks.TICKET, locks.Options{})})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				q.Enqueue(g*1000 + i)
			}
		}()
	}
	wg.Wait()
	count := 0
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
		count++
	}
	if count != 4000 {
		t.Fatalf("locked queue lost elements: %d", count)
	}
}

func BenchmarkQueueLockFreeVsLocked(b *testing.B) {
	b.Run("lockfree", func(b *testing.B) {
		q := NewQueue[int]()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Enqueue(1)
				q.Dequeue()
			}
		})
	})
	b.Run("ticket-locked", func(b *testing.B) {
		q := NewLockedQueue[int](locks.Locker{L: locks.New(locks.TICKET, locks.Options{})})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Enqueue(1)
				q.Dequeue()
			}
		})
	})
}
