package lockfree

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzQueueModel drives the Michael–Scott queue with a fuzzer-chosen op
// sequence in two phases. Sequentially, every Enqueue/Dequeue/Empty
// result must agree with a slice model. Then the same ops replay split
// across goroutines, checking the structural invariants concurrency must
// preserve: no value is lost, none is duplicated, and each producer's
// values dequeue in its own insertion order (per-producer FIFO).
func FuzzQueueModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 1})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 2, 1, 1, 1, 1})
	f.Add([]byte{2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1024 {
			ops = ops[:1024]
		}

		// Phase 1: sequential, exact agreement with a slice model.
		q := NewQueue[uint64]()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.Enqueue(next)
				model = append(model, next)
				next++
			case 1:
				v, ok := q.Dequeue()
				wantOK := len(model) > 0
				if ok != wantOK {
					t.Fatalf("Dequeue ok = %v, model has %d items", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("Dequeue = %d, model head %d", v, model[0])
					}
					model = model[1:]
				}
			default:
				if got, want := q.Empty(), len(model) == 0; got != want {
					t.Fatalf("Empty = %v, model has %d items", got, len(model))
				}
			}
		}
		for _, want := range model {
			v, ok := q.Dequeue()
			if !ok || v != want {
				t.Fatalf("drain: got %d,%v want %d", v, ok, want)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatal("queue not empty after drain")
		}

		// Phase 2: the same op tape sharded over 2 producers and 2
		// consumers. Values are tagged with the producer id so the
		// invariants are checkable without an interleaving oracle.
		nEnq := 0
		for _, op := range ops {
			if op%3 == 0 {
				nEnq++
			}
		}
		const producers, consumers = 2, 2
		cq := NewQueue[uint64]()
		var wg sync.WaitGroup
		got := make([][]uint64, consumers)
		var dequeued atomic.Int64
		target := int64(nEnq * producers)
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				seq := uint64(0)
				for _, op := range ops {
					if op%3 == 0 {
						cq.Enqueue(uint64(p)<<32 | seq)
						seq++
					}
				}
			}()
		}
		for c := 0; c < consumers; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for dequeued.Load() < target {
					if v, ok := cq.Dequeue(); ok {
						got[c] = append(got[c], v)
						dequeued.Add(1)
					} else {
						runtime.Gosched()
					}
				}
			}()
		}
		wg.Wait()

		seen := map[uint64]bool{}
		lastSeq := map[uint64]int64{0: -1, 1: -1}
		total := 0
		for c := range got {
			perProducer := map[uint64]int64{0: -1, 1: -1}
			for _, v := range got[c] {
				if seen[v] {
					t.Fatalf("value %x dequeued twice", v)
				}
				seen[v] = true
				total++
				p, seq := v>>32, int64(v&0xffffffff)
				if seq <= perProducer[p] {
					t.Fatalf("consumer %d saw producer %d out of order: %d after %d", c, p, seq, perProducer[p])
				}
				perProducer[p] = seq
				if seq > lastSeq[p] {
					lastSeq[p] = seq
				}
			}
		}
		if total != nEnq*producers {
			t.Fatalf("dequeued %d values, want %d", total, nEnq*producers)
		}
	})
}

// FuzzStackModel checks the Treiber stack against a slice model
// sequentially.
func FuzzStackModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 1, 1})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1024 {
			ops = ops[:1024]
		}
		s := NewStack[int]()
		var model []int
		for i, op := range ops {
			if op%2 == 0 {
				s.Push(i)
				model = append(model, i)
				continue
			}
			v, ok := s.Pop()
			wantOK := len(model) > 0
			if ok != wantOK {
				t.Fatalf("Pop ok = %v, model has %d items", ok, len(model))
			}
			if ok {
				if want := model[len(model)-1]; v != want {
					t.Fatalf("Pop = %d, model top %d", v, want)
				}
				model = model[:len(model)-1]
			}
			if got, want := s.Empty(), len(model) == 0; got != want {
				t.Fatalf("Empty = %v, want %v", got, want)
			}
		}
	})
}
