// Package lockfree implements the lock-free data structures the paper
// scopes as future work (§8: "we do not study lock-free techniques, an
// appealing way of designing mutual exclusion-free data structures"):
// the Michael–Scott queue [31] — which the paper already cites for its
// long-runs methodology — and the Treiber stack.
//
// Both are linearizable, allocation-per-node, unbounded structures built
// on atomic pointers; they complement libslock by covering the
// synchronization style the paper's evaluation deliberately leaves out,
// and the benches compare them against their lock-based twins under the
// same contention methodology.
package lockfree

import (
	"sync/atomic"

	"ssync/internal/pad"
)

// qnode is one queue cell.
type qnode[T any] struct {
	value T
	next  atomic.Pointer[qnode[T]]
}

// Queue is the Michael–Scott non-blocking FIFO queue [31].
type Queue[T any] struct {
	head pad.Pointer[qnode[T]]
	tail pad.Pointer[qnode[T]]
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	dummy := &qnode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v at the tail.
func (q *Queue[T]) Enqueue(v T) {
	n := &qnode[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; retry
		}
		if next != nil {
			// Tail is lagging: help swing it forward, then retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			// Linearization point; swinging the tail may be helped by
			// anyone, so a failure here is fine.
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// Dequeue removes and returns the head value; ok is false when the queue
// is empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return v, false // empty
			}
			// Tail lagging behind an in-flight enqueue: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		val := next.value
		if q.head.CompareAndSwap(head, next) {
			return val, true
		}
	}
}

// Empty reports whether the queue looked empty at some instant.
func (q *Queue[T]) Empty() bool {
	head := q.head.Load()
	return head.next.Load() == nil && head == q.tail.Load()
}

// snode is one stack cell.
type snode[T any] struct {
	value T
	next  *snode[T]
}

// Stack is the Treiber non-blocking LIFO stack.
type Stack[T any] struct {
	top pad.Pointer[snode[T]]
}

// NewStack returns an empty stack.
func NewStack[T any]() *Stack[T] { return &Stack[T]{} }

// Push adds v on top.
func (s *Stack[T]) Push(v T) {
	n := &snode[T]{value: v}
	for {
		top := s.top.Load()
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			return
		}
	}
}

// Pop removes and returns the top value; ok is false when empty.
func (s *Stack[T]) Pop() (v T, ok bool) {
	for {
		top := s.top.Load()
		if top == nil {
			return v, false
		}
		if s.top.CompareAndSwap(top, top.next) {
			return top.value, true
		}
	}
}

// Empty reports whether the stack looked empty at some instant.
func (s *Stack[T]) Empty() bool { return s.top.Load() == nil }

// LockedQueue is the lock-based baseline: the same FIFO behind a libslock
// algorithm, for the lock-free-versus-locks comparison benches.
type LockedQueue[T any] struct {
	mu    locker
	items []T
}

// locker is the minimal lock surface LockedQueue needs (satisfied by
// locks.Locker).
type locker interface {
	Lock()
	Unlock()
}

// NewLockedQueue wraps a FIFO in the given lock.
func NewLockedQueue[T any](mu locker) *LockedQueue[T] {
	return &LockedQueue[T]{mu: mu}
}

// Enqueue appends v.
func (q *LockedQueue[T]) Enqueue(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
}

// Dequeue pops the oldest element.
func (q *LockedQueue[T]) Dequeue() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}
