// Package hashkit holds the two hashing helpers the repo's hash-table
// layers (internal/ssht, internal/store, internal/kvs) had each grown a
// private copy of: FNV-1a for turning byte keys into 64-bit hashes, and
// Fibonacci-constant remixing for turning a hash into a bucket index
// whose bits are independent of whatever the hash was already used for
// (shard selection, server routing).
//
// Only the *hashing* is shared. The segment layouts deliberately stay
// separate: internal/ssht stores 8-byte keys with fixed 40-byte values
// at 6 entries per segment (one operation fits a libssmp cache-line
// message), while internal/store stores string keys and variable byte
// values at 7 entries per segment (hash words packed first so a bucket
// miss scans only hashes). Same cache-conscious idea, different entry
// shapes — unifying the layouts would force the generic store layout on
// the paper-faithful microbenchmark.
package hashkit

// FibMix is 2^64 / φ, the multiplicative constant of Fibonacci hashing.
const FibMix = 0x9e3779b97f4a7c15

// FNV-1a parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FNV1a hashes a string key with 64-bit FNV-1a.
func FNV1a(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// FNV1aBytes hashes a byte-slice key with 64-bit FNV-1a. It is the
// zero-copy twin of FNV1a for callers holding keys that alias a wire
// frame: FNV1a(string(b)) as an argument materializes the string, and
// that one conversion is exactly the per-request allocation the store's
// hot path is not allowed to make.
func FNV1aBytes(key []byte) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// Mix64 is the splitmix64 avalanche finalizer: every input bit affects
// every output bit. FNV-1a over short, similar keys (the consistent-hash
// ring's "node-i#vnode-j" labels) leaves enough structure that raw
// hashes cluster on the ring; a full-avalanche remix spreads them
// uniformly. Use it when the *whole* 64-bit value must be uniform — the
// Fibonacci remix in Bucket only needs uniform high bits.
func Mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Bucket remixes hash with the Fibonacci constant and reduces it to
// [0, nBuckets). The remix makes the bucket index independent of the
// low bits, which callers typically spend on shard or server selection.
func Bucket(hash, nBuckets uint64) uint64 {
	return (hash * FibMix >> 17) % nBuckets
}
