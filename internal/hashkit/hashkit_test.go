package hashkit

import "testing"

// TestFNV1aKnownValues pins the hash function to the reference FNV-1a
// vectors, so the shared helper cannot silently drift from the values
// the store and kvs shard maps were built on.
func TestFNV1aKnownValues(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := FNV1a(c.in); got != c.want {
			t.Errorf("FNV1a(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestBucketRange checks reduction stays in range and actually uses the
// remixed high bits (two hashes equal mod nBuckets should usually land
// in different buckets).
func TestBucketRange(t *testing.T) {
	const n = 64
	seen := make(map[uint64]bool)
	for h := uint64(0); h < 4096; h++ {
		b := Bucket(h, n)
		if b >= n {
			t.Fatalf("Bucket(%d, %d) = %d out of range", h, n, b)
		}
		seen[b] = true
	}
	if len(seen) != n {
		t.Fatalf("4096 consecutive hashes hit only %d/%d buckets", len(seen), n)
	}
	if Bucket(0, 1) != 0 {
		t.Fatal("Bucket(_, 1) must be 0")
	}
}
