//go:build !race

package race

// Enabled reports that the race detector does not instrument this build.
const Enabled = false
