//go:build race

package race

// Enabled reports that the race detector instruments this build.
const Enabled = true
