// Package race reports whether the current build is instrumented by the
// race detector, mirroring the runtime's internal race package. Tests
// whose assertions the instrumentation perturbs — allocation counts,
// timing envelopes — gate on Enabled instead of redeclaring per-package
// build-tagged constants.
package race
