package memsim

// Channel is a simulated hardware message-passing channel (the Tilera
// iMesh user-dynamic network): a FIFO of small messages delivered to a
// receiver core with a fixed flight latency, bypassing the cache-coherence
// protocol entirely. Multiple senders may share one channel — the hardware
// demultiplexes into the receiver's queue, which is how the Tilera's
// one-queue-per-core network works.
//
// Channels reuse the line-based park/wake machinery: a receiver with an
// empty queue parks on the channel's anchor line and is woken when a
// message is enqueued.
type Channel struct {
	m      *Machine
	anchor Addr
	queue  []chanMsg
	issue  uint64 // sender-side cost of injecting a message
}

type chanMsg struct {
	val    [8]uint64
	from   int
	arrive uint64
}

// NewChannel creates a hardware channel delivering to the given receiver
// core. It panics on platforms without hardware message passing.
func (m *Machine) NewChannel(receiver int) *Channel {
	if !m.Plat.HardwareMP {
		panic("memsim: NewChannel on a platform without hardware message passing")
	}
	c := &Channel{
		m:      m,
		anchor: m.AllocLine(m.Plat.NodeOf(receiver)),
		issue:  4,
	}
	m.getLine(c.anchor) // materialise the park anchor before any receiver parks
	return c
}

// flight returns the network latency from a sender core to the receiver
// core for one message.
func (c *Channel) flight(from, to int) uint64 {
	p := c.m.Plat
	return p.MPBase + uint64(p.MPPerHop*float64(p.Hops(from, to))+0.5)
}

// ChanSend injects a message into the channel; it is received by core
// `to`'s queue after the network flight time. Sending is fire-and-forget,
// as on the modelled hardware.
func (t *Thread) ChanSend(c *Channel, to int, val [8]uint64) {
	t.sync()
	t.c.clock += c.issue
	arrive := t.c.clock + c.flight(t.c.id, to)
	c.queue = append(c.queue, chanMsg{val: val, from: t.c.id, arrive: arrive})
	t.m.wakeAll(t.m.getLine(c.anchor), arrive)
}

// ChanRecv dequeues the next message, blocking (parked, consuming no
// simulated time) until one is available, and returns the payload and the
// sender core.
func (t *Thread) ChanRecv(c *Channel) ([8]uint64, int) {
	for {
		t.sync()
		if len(c.queue) > 0 {
			msg := c.queue[0]
			c.queue = c.queue[1:]
			if t.c.clock < msg.arrive {
				t.c.clock = msg.arrive
			}
			t.c.clock += 2 // dequeue cost
			return msg.val, msg.from
		}
		t.m.events <- event{core: t.c.id, kind: evPark, line: c.anchor.Line(), any: true}
		<-t.c.grant
	}
}

// ChanTryRecv dequeues a message if one has already arrived; ok reports
// whether a message was returned. It never blocks.
func (t *Thread) ChanTryRecv(c *Channel) (val [8]uint64, from int, ok bool) {
	t.sync()
	t.c.clock += 2 // queue-empty check
	if len(c.queue) > 0 && c.queue[0].arrive <= t.c.clock {
		msg := c.queue[0]
		c.queue = c.queue[1:]
		return msg.val, msg.from, true
	}
	return val, -1, false
}
