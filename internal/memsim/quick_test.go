package memsim

import (
	"testing"
	"testing/quick"

	"ssync/internal/arch"
	"ssync/internal/xrand"
)

// Property: a random single-threaded op sequence observes exactly the
// values a reference map would (the simulator's memory is coherent), and
// the line metadata invariants hold afterwards.
func TestQuickSequentialCoherence(t *testing.T) {
	platforms := arch.All()
	f := func(seed uint64, opsRaw []uint8) bool {
		p := platforms[int(seed%uint64(len(platforms)))]
		m := New(p)
		rng := xrand.New(seed | 1)
		nAddrs := 8
		addrs := make([]Addr, nAddrs)
		for i := range addrs {
			addrs[i] = m.AllocLine(int(rng.Uint64() % uint64(p.NumNodes)))
		}
		ref := map[Addr]uint64{}
		ok := true
		m.Spawn(0, func(th *Thread) {
			for _, op := range opsRaw {
				a := addrs[int(op)%nAddrs]
				switch (op / 8) % 6 {
				case 0:
					if th.Load(a) != ref[a] {
						ok = false
					}
				case 1:
					v := rng.Uint64()
					th.Store(a, v)
					ref[a] = v
				case 2:
					old := th.FAI(a)
					if old != ref[a] {
						ok = false
					}
					ref[a]++
				case 3:
					old := th.TAS(a)
					if old != ref[a] {
						ok = false
					}
					ref[a] = 1
				case 4:
					v := rng.Uint64()
					if th.Swap(a, v) != ref[a] {
						ok = false
					}
					ref[a] = v
				case 5:
					exp := ref[a]
					if !th.CAS(a, exp, exp+3) {
						ok = false
					}
					ref[a] = exp + 3
				}
			}
		})
		m.Run()
		if err := m.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: with k threads doing only FAI on shared lines, the final
// values sum to the operation count (atomicity under any interleaving)
// and invariants hold.
func TestQuickConcurrentFAI(t *testing.T) {
	f := func(seed uint64, nRaw, opsRaw uint8) bool {
		p := arch.All()[int(seed%4)]
		n := 2 + int(nRaw)%6
		perThread := 20 + int(opsRaw)%60
		m := New(p)
		lines := []Addr{m.AllocLine(0), m.AllocLine(0), m.AllocLine(0)}
		cores := p.PlaceThreads(n)
		for ti, c := range cores {
			rng := xrand.New(seed + uint64(ti)*977)
			m.Spawn(c, func(th *Thread) {
				for i := 0; i < perThread; i++ {
					th.FAI(lines[rng.Intn(len(lines))])
				}
			})
		}
		m.Run()
		if err := m.CheckInvariants(); err != nil {
			return false
		}
		var sum uint64
		for _, a := range lines {
			sum += m.Peek(a)
		}
		return sum == uint64(n*perThread)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: clocks never decrease and the makespan bounds every thread's
// local time.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		p := arch.Xeon()
		m := New(p)
		a := m.AllocLine(0)
		monotonic := true
		var finals []uint64
		for ti := 0; ti < 4; ti++ {
			rng := xrand.New(seed + uint64(ti))
			m.Spawn(ti*10, func(th *Thread) {
				last := th.Now()
				for i := 0; i < 50; i++ {
					switch rng.Intn(3) {
					case 0:
						th.Load(a)
					case 1:
						th.Store(a, rng.Uint64())
					default:
						th.Pause(rng.Uint64() % 100)
					}
					if th.Now() < last {
						monotonic = false
					}
					last = th.Now()
				}
				finals = append(finals, th.Now())
			})
		}
		makespan := m.Run()
		for _, f := range finals {
			if f > makespan {
				return false
			}
		}
		return monotonic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
