package memsim

import (
	"fmt"

	"ssync/internal/arch"
)

// CheckInvariants validates the coherence metadata of every line and
// returns the first violation found, or nil. Tests call it after runs;
// the rules are the MESI/MOESI single-writer–multiple-reader contract:
//
//   - Modified/Exclusive: exactly one owner, no sharers;
//   - Owned (MOESI platforms only): an owner plus zero or more sharers;
//   - Shared: no owner, at least one sharer;
//   - Invalid: no owner, no sharers.
func (m *Machine) CheckInvariants() error {
	for id, l := range m.lines {
		addr := id << 6
		switch l.state {
		case arch.Modified, arch.Exclusive:
			if l.owner < 0 || int(l.owner) >= m.Plat.NumCores {
				return fmt.Errorf("line %#x: %v with owner %d", addr, l.state, l.owner)
			}
			if !l.sharers.Empty() {
				return fmt.Errorf("line %#x: %v with sharers", addr, l.state)
			}
		case arch.Owned:
			if !m.Plat.IncompleteDirectory {
				return fmt.Errorf("line %#x: Owned state on %s (no MOESI)", addr, m.Plat.Name)
			}
			if l.owner < 0 || int(l.owner) >= m.Plat.NumCores {
				return fmt.Errorf("line %#x: Owned with owner %d", addr, l.owner)
			}
		case arch.Shared:
			if l.sharers.Empty() {
				return fmt.Errorf("line %#x: Shared with no sharers", addr)
			}
		case arch.Invalid:
			if !l.sharers.Empty() {
				return fmt.Errorf("line %#x: Invalid with sharers", addr)
			}
		default:
			return fmt.Errorf("line %#x: unknown state %d", addr, l.state)
		}
		for _, w := range l.waiters {
			if w.core < 0 || w.core >= m.Plat.NumCores {
				return fmt.Errorf("line %#x: waiter core %d out of range", addr, w.core)
			}
		}
	}
	return nil
}
