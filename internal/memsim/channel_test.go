package memsim

import (
	"testing"

	"ssync/internal/arch"
)

func TestChannelFIFOAndLatency(t *testing.T) {
	p := arch.Tilera()
	m := New(p)
	ch := m.NewChannel(35)
	var latencies []uint64
	const n = 20
	m.Spawn(0, func(th *Thread) {
		for i := 0; i < n; i++ {
			th.ChanSend(ch, 35, [8]uint64{uint64(i), th.Now()})
			th.Pause(500)
		}
	})
	m.Spawn(35, func(th *Thread) {
		for i := 0; i < n; i++ {
			val, from := th.ChanRecv(ch)
			if from != 0 {
				t.Errorf("wrong sender %d", from)
			}
			if val[0] != uint64(i) {
				t.Errorf("message %d arrived as %d (order)", i, val[0])
			}
			latencies = append(latencies, th.Now()-val[1])
		}
	})
	m.Run()
	// Flight for 10 hops ≈ MPBase + 0.4*10 ≈ 64, plus issue+dequeue.
	for i, l := range latencies {
		if l < 60 || l > 120 {
			t.Errorf("message %d latency %d cycles, want ≈70", i, l)
		}
	}
}

func TestChannelMultipleSenders(t *testing.T) {
	p := arch.Tilera()
	m := New(p)
	ch := m.NewChannel(0)
	const perSender = 25
	senders := []int{1, 6, 35}
	for _, s := range senders {
		s := s
		m.Spawn(s, func(th *Thread) {
			for i := 0; i < perSender; i++ {
				th.ChanSend(ch, 0, [8]uint64{uint64(s)})
				th.Pause(100)
			}
		})
	}
	counts := map[int]int{}
	m.Spawn(0, func(th *Thread) {
		for i := 0; i < perSender*len(senders); i++ {
			_, from := th.ChanRecv(ch)
			counts[from]++
		}
	})
	m.Run()
	for _, s := range senders {
		if counts[s] != perSender {
			t.Errorf("sender %d delivered %d, want %d", s, counts[s], perSender)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	p := arch.Tilera()
	m := New(p)
	ch := m.NewChannel(1)
	var gotEmpty, gotMsg bool
	m.Spawn(1, func(th *Thread) {
		if _, _, ok := th.ChanTryRecv(ch); !ok {
			gotEmpty = true
		}
		th.Pause(5_000) // let the message arrive
		if v, from, ok := th.ChanTryRecv(ch); ok && from == 0 && v[0] == 42 {
			gotMsg = true
		}
	})
	m.Spawn(0, func(th *Thread) {
		th.Pause(100)
		th.ChanSend(ch, 1, [8]uint64{42})
	})
	m.Run()
	if !gotEmpty {
		t.Error("TryRecv on an empty channel must miss")
	}
	if !gotMsg {
		t.Error("TryRecv after delivery must hit")
	}
}

func TestChannelOnNonMPPlatformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChannel on the Opteron must panic")
		}
	}()
	New(arch.Opteron()).NewChannel(0)
}

func TestStoreMultiSingleTransaction(t *testing.T) {
	p := arch.Xeon()
	m := New(p)
	a := m.AllocLine(0)
	m.Spawn(0, func(th *Thread) {
		th.Load(a) // bring the line in
		th.StoreMulti(a, 1, 2, 3, 4, 5, 6, 7, 8)
	})
	m.Run()
	for i := 0; i < 8; i++ {
		if got := m.Peek(a + Addr(8*i)); got != uint64(i+1) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	// One load transfer; the burst store hits the local line.
	if m.Stats.Transfers != 1 {
		t.Errorf("transfers = %d, want 1 (burst must not re-transfer)", m.Stats.Transfers)
	}
}

func TestMultiCrossLinePanics(t *testing.T) {
	m := New(arch.Xeon())
	a := m.AllocLine(0)
	panicked := false
	m.Spawn(0, func(th *Thread) {
		// The bounds check fires before any scheduler interaction, so the
		// thread can recover and terminate normally.
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.StoreMulti(a+32, 1, 2, 3, 4, 5) // words 4..8 spill over
	})
	m.Run()
	if !panicked {
		t.Error("StoreMulti across a line boundary must panic")
	}
}
