package memsim

import "ssync/internal/arch"

// Aliases keeping thread.go free of arch imports at call sites.
const (
	casOp  = arch.CAS
	faiOp  = arch.FAI
	tasOp  = arch.TAS
	swapOp = arch.SWAP
)

// This file implements the semantics and cost model of the simulated
// memory operations. Every function here runs on the thread goroutine that
// currently holds the scheduler grant, so it has exclusive access to the
// machine state.

// hasCopy reports whether core c holds a valid copy of the line.
func (l *line) hasCopy(c int) bool {
	switch l.state {
	case arch.Modified, arch.Exclusive:
		return int(l.owner) == c
	case arch.Owned:
		return int(l.owner) == c || l.sharers.Has(c)
	case arch.Shared:
		return l.sharers.Has(c)
	}
	return false
}

// copies calls f for every core that holds a valid copy of the line.
func (l *line) copies(f func(core int)) {
	switch l.state {
	case arch.Modified, arch.Exclusive:
		f(int(l.owner))
	case arch.Owned:
		f(int(l.owner))
		l.sharers.ForEach(f)
	case arch.Shared:
		l.sharers.ForEach(f)
	}
}

// nCopies returns the number of cores holding a valid copy.
func (l *line) nCopies() int {
	n := 0
	l.copies(func(int) { n++ })
	return n
}

// holderClass returns the distance class used to price a transaction by
// core c on line l, together with the "holder" core the paper's
// methodology would consider (-1 when the line comes from memory).
func (m *Machine) holderClass(c int, l *line, id uint64) (class int, holder int) {
	p := m.Plat
	if l.state == arch.Invalid {
		return p.DistClassToNode(c, l.home), -1
	}
	if p.Name == "Tilera" {
		// Distributed LLC: every miss is serviced via the line's home tile.
		home := p.HomeTile(id)
		return p.Hops(c, home), home
	}
	switch l.state {
	case arch.Modified, arch.Exclusive, arch.Owned:
		return p.DistClass(c, int(l.owner)), int(l.owner)
	default: // Shared: nearest copy services the request
		best, bestCore := -1, -1
		l.sharers.ForEach(func(s int) {
			d := p.DistClass(c, s)
			if best == -1 || d < best {
				best, bestCore = d, s
			}
		})
		if best == -1 {
			return p.DistClassToNode(c, l.home), -1
		}
		return best, bestCore
	}
}

// invalClass returns the distance class pricing an invalidation: the
// farthest valid copy from the writer.
func (m *Machine) invalClass(c int, l *line, id uint64) int {
	p := m.Plat
	if p.Name == "Tilera" {
		return p.Hops(c, p.HomeTile(id))
	}
	worst := 0
	l.copies(func(s int) {
		if s == c {
			return
		}
		if d := p.DistClass(c, s); d > worst {
			worst = d
		}
	})
	return worst
}

// intraSocket reports whether every valid copy of the line lives on core
// c's socket (Xeon inclusive-LLC fast path).
func (m *Machine) intraSocket(c int, l *line) bool {
	p := m.Plat
	node := p.NodeOf(c)
	ok := true
	l.copies(func(s int) {
		if p.NodeOf(s) != node {
			ok = false
		}
	})
	return ok
}

// dirPenalty returns the Opteron incomplete-directory penalty: when the
// line's home node is remote to both the requester and the holder, every
// transaction must still consult the remote directory, costing an extra
// DirHopPenalty per hop from the requester to the home node (paper §5.2:
// "in the worst case ... the latencies are 312 cycles").
func (m *Machine) dirPenalty(c, holder int, l *line) uint64 {
	p := m.Plat
	if !p.IncompleteDirectory || m.Opt.CompleteDirectory || l.state == arch.Invalid {
		return 0
	}
	if p.NodeOf(c) == l.home {
		return 0
	}
	if holder >= 0 && p.NodeOf(holder) == l.home {
		return 0
	}
	m.Stats.DirPenalty++
	return p.DirHopPenalty * uint64(p.HopsToNode(c, l.home))
}

// begin starts a coherence transaction for the issuing core at the line,
// applying the serialisation model, and returns the start time.
func (m *Machine) begin(rt *coreRT, l *line) uint64 {
	start := rt.clock
	if !m.Opt.NoContention {
		floor := l.busyUntil
		if l.reservedUntil > floor && l.reserved != int32(rt.id) {
			floor = l.reservedUntil
		}
		if floor > start {
			m.Stats.Stalls++
			m.Stats.StallTime += floor - start
			start = floor
		}
	}
	m.Stats.Transfers++
	return start
}

// jitter scales a transaction cost by the configured CostJitter using a
// deterministic xorshift stream, so runs remain exactly reproducible.
func (m *Machine) jitter(cost uint64) uint64 {
	j := m.Opt.CostJitter
	if j <= 0 {
		return cost
	}
	x := m.jitterSt
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.jitterSt = x
	u := float64(x*0x2545f4914f6cdd1d>>11) / (1 << 53) // [0,1)
	return uint64(float64(cost) * (1 - j + 2*j*u))
}

// finish completes a transaction: advances the core clock and occupies the
// line until the end time.
func (m *Machine) finish(rt *coreRT, l *line, start, cost uint64) uint64 {
	end := start + cost
	rt.clock = end
	if !m.Opt.NoContention {
		l.busyUntil = end
	}
	return end
}

// doLoad performs a load by core c and returns the word value.
func (m *Machine) doLoad(rt *coreRT, a Addr) uint64 {
	m.Stats.Loads++
	rt.ops++
	l := m.getLine(a)
	c := rt.id
	if l.hasCopy(c) {
		m.Stats.LocalHits++
		rt.clock += m.Plat.L1
		return m.words[a.word()]
	}
	start := m.begin(rt, l)
	class, holder := m.holderClass(c, l, a.Line())
	p := m.Plat
	st := l.state
	if p.InclusiveLLC && st != arch.Invalid && m.intraSocket(c, l) {
		// The inclusive LLC services the load within the socket.
		class = 0
	}
	cost := m.jitter(p.Lat(arch.Load, st, class) + m.dirPenalty(c, holder, l))
	// A load that does not demote an owner (Shared, or Owned with extra
	// sharers) occupies the line's serialisation point for the platform's
	// read occupancy rather than the full latency: read sharing is nearly
	// concurrent on the Xeon/Niagara/Tilera, while the Opteron's probe
	// filter serialises every probe at the home directory.
	if st == arch.Shared || st == arch.Owned {
		end := start + cost
		rt.clock = end
		if !m.Opt.NoContention && l.busyUntil < start+p.ReadOccupancy {
			l.busyUntil = start + p.ReadOccupancy
		}
	} else {
		m.finish(rt, l, start, cost)
	}

	// State transition.
	switch st {
	case arch.Invalid:
		l.state = arch.Exclusive
		l.owner = int32(c)
	case arch.Modified:
		if p.IncompleteDirectory {
			// MOESI: the dirty owner keeps the line in Owned state.
			l.state = arch.Owned
			l.sharers.Clear()
			l.sharers.Add(c)
		} else {
			l.state = arch.Shared
			l.sharers.Clear()
			l.sharers.Add(int(l.owner))
			l.sharers.Add(c)
			l.owner = -1
		}
	case arch.Exclusive:
		l.state = arch.Shared
		l.sharers.Clear()
		l.sharers.Add(int(l.owner))
		l.sharers.Add(c)
		l.owner = -1
	case arch.Owned, arch.Shared:
		l.sharers.Add(c)
	}
	return m.words[a.word()]
}

// doWrite prices and applies a write-intent transaction (store, atomic or
// prefetchw) and returns its completion time. op selects the latency row.
// hint marks a prefetchw: the requester pays the full transfer latency but
// the directory only forwards the directed request and moves on, so the
// line is occupied for the read occupancy rather than the full transfer —
// this is what makes the §5.3 prefetchw spinning cheap where a broadcast
// store is not.
func (m *Machine) doWrite(rt *coreRT, a Addr, op arch.Op, hint bool) uint64 {
	l := m.getLine(a)
	c := rt.id
	p := m.Plat

	local := (l.state == arch.Modified || l.state == arch.Exclusive) && int(l.owner) == c
	if local {
		m.Stats.LocalHits++
		var cost uint64
		if op.IsAtomic() {
			cost = p.AtomicLocal
		} else {
			cost = p.StoreLocal
		}
		rt.clock += cost
		l.state = arch.Modified
		return rt.clock
	}

	start := m.begin(rt, l)
	st := l.state
	shared := st == arch.Shared || st == arch.Owned
	var class int
	var holder int
	if shared {
		class = m.invalClass(c, l, a.Line())
		holder = int(l.owner)
		if st == arch.Shared {
			holder = l.sharers.Any()
		}
	} else {
		class, holder = m.holderClass(c, l, a.Line())
	}
	if p.InclusiveLLC && st != arch.Invalid && m.intraSocket(c, l) {
		class = 0
	}

	effState := st
	broadcast := false
	if shared && p.IncompleteDirectory {
		if m.Opt.CompleteDirectory {
			// Ablation: a precise directory invalidates point-to-point.
			effState = arch.Modified
		} else {
			m.Stats.Broadcasts++
			broadcast = true
		}
	}
	cost := p.Lat(op, effState, class)
	if broadcast && p.NodeOf(c) != l.home {
		// A broadcast is initiated at the home directory: a writer off the
		// home node consults it remotely no matter where the sharers are.
		m.Stats.DirPenalty++
		cost += p.DirHopPenalty * uint64(p.HopsToNode(c, l.home))
	}
	if shared && p.PerSharerInval > 0 {
		n := l.nCopies()
		if l.hasCopy(c) {
			n--
		}
		if n > 1 {
			cost += uint64(p.PerSharerInval * float64(n-1))
		}
	}
	if !broadcast {
		cost += m.dirPenalty(c, holder, l)
	}
	cost = m.jitter(cost)
	var end uint64
	if hint && !broadcast {
		end = start + cost
		rt.clock = end
		if !m.Opt.NoContention && l.busyUntil < start+p.ReadOccupancy {
			l.busyUntil = start + p.ReadOccupancy
		}
	} else {
		end = m.finish(rt, l, start, cost)
	}

	l.state = arch.Modified
	l.owner = int32(c)
	l.sharers.Clear()
	return end
}

// doStore performs a store of v by the core.
func (m *Machine) doStore(rt *coreRT, a Addr, v uint64) {
	m.Stats.Stores++
	rt.ops++
	end := m.doWrite(rt, a, arch.Store, false)
	m.words[a.word()] = v
	m.wakeWord(m.getLine(a), a, end)
}

// doPrefetchw performs a prefetch-with-write-intent: the line moves to
// Modified in the issuing core without changing the value (paper §5.3).
//
// Prefetch instructions are non-blocking on the modelled hardware: the
// instruction retires immediately and the RFO completes in the background
// (that is the entire point of prefetching — hiding the transfer behind
// other work). The issuer therefore pays only the issue cost; the
// directory is occupied for the background transfer, and the ownership
// transition is applied eagerly. Parked spinners are not woken — the value
// has not changed.
func (m *Machine) doPrefetchw(rt *coreRT, a Addr) {
	l := m.getLine(a)
	c := rt.id
	p := m.Plat
	if (l.state == arch.Modified || l.state == arch.Exclusive) && int(l.owner) == c {
		rt.clock += p.L1 // already owned: a no-op hint
		l.state = arch.Modified
		return
	}
	m.Stats.Prefetches++
	rt.ops++
	m.Stats.Transfers++
	rt.clock += p.L1 // issue cost only: the transfer is asynchronous
	start := rt.clock
	if !m.Opt.NoContention {
		if l.busyUntil > start {
			start = l.busyUntil
		}
		occ := p.ReadOccupancy // directed forward by the directory
		if (l.state == arch.Shared || l.state == arch.Owned) && p.IncompleteDirectory && !m.Opt.CompleteDirectory {
			// Invalidating an unknown sharer set is still a broadcast.
			occ = p.Lat(arch.Store, arch.Shared, m.invalClass(c, l, a.Line()))
			m.Stats.Broadcasts++
		}
		l.busyUntil = start + occ
	}
	l.state = arch.Modified
	l.owner = int32(c)
	l.sharers.Clear()
}

// doAtomic performs an atomic read-modify-write. mut receives the old
// value and returns the new one along with whether it must be written
// back; the line is acquired exclusively either way (a failed CAS still
// invalidates other copies on every platform modelled).
func (m *Machine) doAtomic(rt *coreRT, a Addr, op arch.Op, mut func(old uint64) (uint64, bool)) uint64 {
	m.Stats.Atomics++
	rt.ops++
	end := m.doWrite(rt, a, op, false)
	w := a.word()
	l := m.getLine(a)
	old := m.words[w]
	if v, write := mut(old); write {
		m.words[w] = v
		m.wakeWord(l, a, end)
	} else {
		// Failed CAS: the owner's immediate retry beats queued requests.
		l.reserved = int32(rt.id)
		l.reservedUntil = end + 2*m.Plat.AtomicLocal + m.Plat.L1
	}
	return old
}
