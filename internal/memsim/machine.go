// Package memsim implements a deterministic discrete-event simulator of the
// many-core machines modelled by internal/arch.
//
// Each simulated thread is a goroutine pinned to a simulated core. A single
// scheduler serialises all memory operations in virtual-time order: the
// runnable thread with the smallest virtual clock executes its next
// operation. The result is a sequentially-consistent, perfectly
// reproducible interleaving whose *timing* follows the platform's
// cache-coherence model:
//
//   - an operation that hits in the issuing core's cache costs the local
//     access latency and causes no traffic;
//   - anything else is a coherence transaction: it costs the platform's
//     Table 2 latency for (operation, line state, distance to the current
//     holder), and it occupies the line's directory/bus until it completes,
//     so conflicting transactions on one line serialise — this is the
//     queueing behaviour that makes contended synchronization collapse on
//     the multi-socket models;
//   - spinning is expressed with WaitChange, which parks the thread until
//     the watched line is written and then charges the re-fetch, exactly
//     like a polling loop on real hardware that spins on a locally-cached
//     line for free until the invalidation arrives.
//
// The protocol quirks of the four platforms (Opteron's incomplete probe
// filter and MOESI Owned state, Xeon's inclusive-LLC intra-socket locality,
// Niagara's uniform latencies, Tilera's home tiles) are applied in ops.go.
package memsim

import (
	"fmt"
	"sort"

	"ssync/internal/arch"
	"ssync/internal/bits"
)

// Addr is a simulated physical byte address. Word accessors operate on
// 8-byte-aligned addresses; cache lines are 64 bytes.
type Addr uint64

// Line returns the cache-line id of the address.
func (a Addr) Line() uint64 { return uint64(a) >> 6 }

// word returns the 8-byte-aligned address holding a.
func (a Addr) word() Addr { return a &^ 7 }

// nodeBits is the shift used to encode the home memory node in an address.
const nodeShift = 32

// line is the simulator's per-cache-line metadata.
type line struct {
	state   arch.State
	owner   int32 // valid for Modified/Exclusive/Owned
	sharers bits.Set
	home    int // home memory node

	// busyUntil is the virtual time until which the line's directory/bus
	// is occupied by an in-flight coherence transaction.
	busyUntil uint64

	// After a failed CAS the owner briefly holds off competing requests
	// (reservedUntil); on real hardware the owner's pipelined retry
	// completes before queued invalidations are serviced, which is what
	// makes CAS retry loops livelock-free.
	reserved      int32
	reservedUntil uint64

	// waiters are cores parked in WaitChange on this line, each watching
	// one word for a value change.
	waiters []waiter
}

// waiter is one parked spinner: it resumes when the watched word's value
// differs from old (on channels: when any message arrives).
type waiter struct {
	core int
	word Addr
	old  uint64
	any  bool // channel receivers wake on any enqueue
}

// Counters aggregates event counts over a run, for tests, ablations and
// reporting.
type Counters struct {
	Loads      uint64 // load operations issued
	Stores     uint64 // store operations issued
	Atomics    uint64 // atomic operations issued
	Prefetches uint64 // prefetchw transfers issued
	LocalHits  uint64 // operations satisfied from the local cache
	Transfers  uint64 // coherence transactions
	Broadcasts uint64 // Opteron incomplete-directory broadcasts
	DirPenalty uint64 // transactions that paid the remote-directory penalty
	Wakeups    uint64 // WaitChange wake events
	Stalls     uint64 // transactions delayed by a busy line
	StallTime  uint64 // total cycles spent waiting on busy lines
}

// Options toggles model features, for ablation studies.
type Options struct {
	// NoContention disables per-line transaction serialisation (infinite
	// directory bandwidth). Ablation for the contention model.
	NoContention bool
	// CompleteDirectory pretends the Opteron probe filter tracks sharers
	// precisely: stores to Shared/Owned lines cost like stores to Modified
	// ones and the remote-directory penalty disappears.
	CompleteDirectory bool
	// CostJitter perturbs every coherence-transaction cost by a
	// deterministic pseudo-random factor in [1-j, 1+j]. Real arbitration,
	// snoop-response and DRAM timing variance prevents the perfectly
	// periodic service orders a cycle-exact queue would fall into; the
	// throughput benchmarks enable it (0.15), the latency tables do not.
	CostJitter float64
}

// Machine is one simulated many-core machine. It is not safe for use by
// multiple host goroutines except through Spawn/Run.
type Machine struct {
	Plat *arch.Platform
	Opt  Options

	lines map[uint64]*line
	words map[Addr]uint64

	cores   []*coreRT
	events  chan event
	pending []wake // wakeups produced by the op currently executing

	allocNext []Addr // per-node bump allocator (line-aligned)

	deadline  uint64
	maxEvents uint64
	nEvents   uint64
	jitterSt  uint64 // xorshift state for CostJitter

	Stats Counters
}

type coreRT struct {
	id      int
	clock   uint64
	grant   chan struct{}
	thread  *Thread
	started bool
	ops     uint64
}

type eventKind uint8

const (
	evReady eventKind = iota
	evPark
	evDone
)

type event struct {
	core int
	kind eventKind
	// evPark payload: the line parked on, the watched word and the value
	// it must move away from. any marks channel receivers.
	line uint64
	word Addr
	old  uint64
	any  bool
}

type wake struct {
	core int
	at   uint64
}

// New creates a machine for the given platform model.
func New(p *arch.Platform) *Machine {
	m := &Machine{
		Plat:      p,
		lines:     make(map[uint64]*line),
		words:     make(map[Addr]uint64),
		cores:     make([]*coreRT, p.NumCores),
		events:    make(chan event, p.NumCores),
		allocNext: make([]Addr, p.NumNodes),
		deadline:  ^uint64(0),
		maxEvents: 1 << 33,
		jitterSt:  0x243f6a8885a308d3,
	}
	for i := range m.cores {
		m.cores[i] = &coreRT{id: i, grant: make(chan struct{})}
	}
	for n := range m.allocNext {
		m.allocNext[n] = Addr(uint64(n+1) << nodeShift)
	}
	return m
}

// Alloc reserves nWords contiguous 8-byte words on the given memory node
// and returns the address of the first. Allocations are line-aligned, so a
// request of up to 8 words occupies exactly one cache line.
func (m *Machine) Alloc(node, nWords int) Addr {
	if node < 0 || node >= len(m.allocNext) {
		panic(fmt.Sprintf("memsim: Alloc on invalid node %d (platform %s has %d)", node, m.Plat.Name, len(m.allocNext)))
	}
	if nWords <= 0 {
		nWords = 1
	}
	a := m.allocNext[node]
	nLines := (nWords*8 + 63) / 64
	m.allocNext[node] = a + Addr(nLines*64)
	return a
}

// AllocLine reserves one full cache line on the node.
func (m *Machine) AllocLine(node int) Addr { return m.Alloc(node, 8) }

// homeOf decodes the home node from an address.
func (m *Machine) homeOf(a Addr) int {
	n := int(uint64(a)>>nodeShift) - 1
	if n < 0 || n >= m.Plat.NumNodes {
		panic(fmt.Sprintf("memsim: address %#x not produced by Alloc", uint64(a)))
	}
	return n
}

// getLine returns (creating if needed) the metadata of the line holding a.
func (m *Machine) getLine(a Addr) *line {
	id := a.Line()
	l := m.lines[id]
	if l == nil {
		l = &line{state: arch.Invalid, owner: -1, home: m.homeOf(a)}
		m.lines[id] = l
	}
	return l
}

// Poke initialises a word without simulating an access (setup only; the
// line stays uncached/Invalid).
func (m *Machine) Poke(a Addr, v uint64) { m.words[a.word()] = v }

// Peek reads a word without simulating an access (inspection only).
func (m *Machine) Peek(a Addr) uint64 { return m.words[a.word()] }

// LineState returns the current coherence state of the line holding a and
// the id of its owner core (-1 when the state has no owner).
func (m *Machine) LineState(a Addr) (arch.State, int) {
	l := m.lines[a.Line()]
	if l == nil {
		return arch.Invalid, -1
	}
	return l.state, int(l.owner)
}

// SetDeadline makes Thread.Done report true once a thread's virtual clock
// passes the given cycle count. Threads poll Done in their loops; the
// machine never preempts them.
func (m *Machine) SetDeadline(cycles uint64) { m.deadline = cycles }

// Deadline returns the configured deadline (max uint64 when unset).
func (m *Machine) Deadline() uint64 { return m.deadline }

// Spawn registers fn to run as a thread pinned to the given core. It
// panics if the core is out of range or already occupied. All Spawn calls
// must precede Run.
func (m *Machine) Spawn(core int, fn func(*Thread)) *Thread {
	if core < 0 || core >= len(m.cores) {
		panic(fmt.Sprintf("memsim: Spawn on invalid core %d (platform %s has %d)", core, m.Plat.Name, len(m.cores)))
	}
	c := m.cores[core]
	if c.thread != nil {
		panic(fmt.Sprintf("memsim: core %d already has a thread", core))
	}
	t := &Thread{m: m, c: c, fn: fn}
	c.thread = t
	return t
}

// Run executes all spawned threads to completion and returns the largest
// virtual clock reached (the makespan in cycles). Run may be called once.
func (m *Machine) Run() uint64 {
	const (
		stRunning = iota
		stReady
		stParked
		stDone
	)
	active := 0
	state := make([]int, len(m.cores))
	for _, c := range m.cores {
		if c.thread == nil {
			state[c.id] = stDone
			continue
		}
		active++
		c.started = true
		go c.thread.run()
	}
	if active == 0 {
		return 0
	}
	nDone, nBlocked := 0, 0 // blocked = ready or parked
	for nDone < active {
		// Absorb events until every live core is quiescent.
		for nBlocked+nDone < active {
			ev := <-m.events
			m.nEvents++
			if m.nEvents > m.maxEvents {
				panic("memsim: event budget exceeded (livelock in simulated program?)")
			}
			switch ev.kind {
			case evReady:
				state[ev.core] = stReady
				nBlocked++
			case evPark:
				state[ev.core] = stParked
				l := m.lines[ev.line]
				l.waiters = append(l.waiters, waiter{core: ev.core, word: ev.word, old: ev.old, any: ev.any})
				nBlocked++
			case evDone:
				state[ev.core] = stDone
				nDone++
			}
		}
		// Deliver wakeups generated by the last operation.
		for _, w := range m.pending {
			if state[w.core] != stParked {
				continue // already woken via another line
			}
			c := m.cores[w.core]
			if c.clock < w.at {
				c.clock = w.at
			}
			state[w.core] = stReady
			m.Stats.Wakeups++
		}
		m.pending = m.pending[:0]
		if nDone == active {
			break
		}
		// Grant the ready core with the smallest clock (lowest id wins
		// ties, for determinism).
		best := -1
		for id, st := range state {
			if st != stReady {
				continue
			}
			if best == -1 || m.cores[id].clock < m.cores[best].clock {
				best = id
			}
		}
		if best == -1 {
			m.panicDeadlock(state, stParked)
		}
		state[best] = stRunning
		nBlocked--
		m.cores[best].grant <- struct{}{}
		// The granted thread performs exactly one operation and then sends
		// its next event; loop around to receive it.
	}
	return m.MaxClock()
}

func (m *Machine) panicDeadlock(state []int, stParked int) {
	var parked []int
	for id, st := range state {
		if st == stParked {
			parked = append(parked, id)
		}
	}
	sort.Ints(parked)
	detail := ""
	for id, l := range m.lines {
		if len(l.waiters) > 0 {
			detail += fmt.Sprintf("\n  line %#x (state %v owner %d): waiters %v", id<<6, l.state, l.owner, l.waiters)
		}
	}
	panic(fmt.Sprintf("memsim: deadlock — no runnable thread, cores %v parked in WaitChange with no future writer%s", parked, detail))
}

// MaxClock returns the largest per-core virtual clock.
func (m *Machine) MaxClock() uint64 {
	var max uint64
	for _, c := range m.cores {
		if c.started && c.clock > max {
			max = c.clock
		}
	}
	return max
}

// Ops returns the number of memory operations issued by a core.
func (m *Machine) Ops(core int) uint64 { return m.cores[core].ops }

// wakeWord schedules the waiters parked on l whose watched word now holds
// a value different from the one they went to sleep on. Others stay
// parked — on the modelled hardware their re-fetch would read the same
// value and they would re-park immediately.
func (m *Machine) wakeWord(l *line, word Addr, at uint64) {
	if len(l.waiters) == 0 {
		return
	}
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if w.word == word.word() && m.words[w.word] != w.old {
			m.pending = append(m.pending, wake{core: w.core, at: at})
		} else {
			kept = append(kept, w)
		}
	}
	l.waiters = kept
}

// wakeAll schedules every waiter parked on l (used by channels, whose
// receivers wake on any enqueue).
func (m *Machine) wakeAll(l *line, at uint64) {
	for _, w := range l.waiters {
		m.pending = append(m.pending, wake{core: w.core, at: at})
	}
	l.waiters = l.waiters[:0]
}
