package memsim

// Thread is the handle a simulated thread uses to touch memory. All
// methods must be called from the function passed to Spawn, on the
// goroutine the machine created for it.
type Thread struct {
	m  *Machine
	c  *coreRT
	fn func(*Thread)
}

func (t *Thread) run() {
	t.fn(t)
	t.m.events <- event{core: t.c.id, kind: evDone}
}

// sync hands control to the scheduler and blocks until this thread is the
// minimum-clock runnable thread. On return the thread holds the machine
// exclusively until its next sync/park.
func (t *Thread) sync() {
	t.m.events <- event{core: t.c.id, kind: evReady}
	<-t.c.grant
}

// Core returns the simulated core this thread is pinned to.
func (t *Thread) Core() int { return t.c.id }

// Node returns the memory node of the thread's core.
func (t *Thread) Node() int { return t.m.Plat.NodeOf(t.c.id) }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Now returns the thread's virtual clock in cycles.
func (t *Thread) Now() uint64 { return t.c.clock }

// Done reports whether the machine deadline has passed for this thread.
// Thread loops poll it; the simulator never preempts.
func (t *Thread) Done() bool { return t.c.clock >= t.m.deadline }

// Pause advances the thread's clock by the given cycles without touching
// memory (local computation, configured back-off, or the paper's
// inter-operation delay that prevents unrealistic long runs).
func (t *Thread) Pause(cycles uint64) { t.c.clock += cycles }

// Load reads the 8-byte word at a, paying the coherence cost.
func (t *Thread) Load(a Addr) uint64 {
	t.sync()
	return t.m.doLoad(t.c, a)
}

// Store writes the 8-byte word at a, paying the coherence cost.
func (t *Thread) Store(a Addr, v uint64) {
	t.sync()
	t.m.doStore(t.c, a, v)
}

// StoreMulti writes consecutive words starting at a as one coherence
// transaction (a store-buffer burst within a single cache line, e.g. a
// message-body memcpy). It panics if the words spill over a line boundary.
func (t *Thread) StoreMulti(a Addr, vals ...uint64) {
	if len(vals) == 0 {
		return
	}
	last := a + Addr(8*(len(vals)-1))
	if a.Line() != last.Line() {
		panic("memsim: StoreMulti crosses a cache-line boundary")
	}
	t.sync()
	t.m.doStore(t.c, a, vals[0])
	for i, v := range vals[1:] {
		w := (a + Addr(8*(i+1))).word()
		t.m.words[w] = v
		t.c.clock++ // subsequent stores drain from the store buffer
		t.m.wakeWord(t.m.getLine(a), w, t.c.clock)
	}
}

// LoadMulti reads consecutive words starting at a as one transaction plus
// register-speed reads of the rest of the (now local) line.
func (t *Thread) LoadMulti(a Addr, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	last := a + Addr(8*(n-1))
	if a.Line() != last.Line() {
		panic("memsim: LoadMulti crosses a cache-line boundary")
	}
	t.sync()
	out := make([]uint64, n)
	out[0] = t.m.doLoad(t.c, a)
	for i := 1; i < n; i++ {
		out[i] = t.m.words[(a + Addr(8*i)).word()]
		t.c.clock++
	}
	return out
}

// Prefetchw issues a prefetch-with-write-intent for the line holding a,
// bringing it to Modified state in this core (x86 prefetchw; paper §5.3).
func (t *Thread) Prefetchw(a Addr) {
	t.sync()
	t.m.doPrefetchw(t.c, a)
}

// CAS atomically compares the word at a with old and, if equal, writes
// new. It reports whether the swap happened. A failed CAS still acquires
// the line exclusively, as on the modelled hardware.
func (t *Thread) CAS(a Addr, old, new uint64) bool {
	t.sync()
	prev := t.m.doAtomic(t.c, a, casOp, func(cur uint64) (uint64, bool) {
		if cur == old {
			return new, true
		}
		return 0, false
	})
	return prev == old
}

// CASVal is CAS returning the previously-stored value along with whether
// the swap happened — the x86 cmpxchg semantics, which retry loops use to
// avoid a reload between attempts.
func (t *Thread) CASVal(a Addr, old, new uint64) (uint64, bool) {
	t.sync()
	prev := t.m.doAtomic(t.c, a, casOp, func(cur uint64) (uint64, bool) {
		if cur == old {
			return new, true
		}
		return 0, false
	})
	return prev, prev == old
}

// FAI atomically increments the word at a and returns its previous value.
func (t *Thread) FAI(a Addr) uint64 {
	t.sync()
	return t.m.doAtomic(t.c, a, faiOp, func(cur uint64) (uint64, bool) {
		return cur + 1, true
	})
}

// FAA atomically adds delta to the word at a and returns its previous
// value. It costs the same as FAI.
func (t *Thread) FAA(a Addr, delta uint64) uint64 {
	t.sync()
	return t.m.doAtomic(t.c, a, faiOp, func(cur uint64) (uint64, bool) {
		return cur + delta, true
	})
}

// TAS atomically sets the word at a to 1 and returns its previous value
// (0 means the caller won).
func (t *Thread) TAS(a Addr) uint64 {
	t.sync()
	return t.m.doAtomic(t.c, a, tasOp, func(uint64) (uint64, bool) {
		return 1, true
	})
}

// Swap atomically writes v to the word at a and returns the previous
// value.
func (t *Thread) Swap(a Addr, v uint64) uint64 {
	t.sync()
	return t.m.doAtomic(t.c, a, swapOp, func(uint64) (uint64, bool) {
		return v, true
	})
}

// WaitChange blocks until the word at a differs from old and returns the
// new value. It models a polling loop: the first check is a normal load;
// if the value is unchanged the thread parks, consuming no simulated time,
// until another core performs a write-intent transaction on the line
// (which on real hardware is the invalidation that makes the spinner
// re-fetch). The re-fetch load is then paid, serialised against all other
// traffic on the line — this is what turns a release under heavy
// contention into an invalidation storm.
func (t *Thread) WaitChange(a Addr, old uint64) uint64 {
	for {
		v := t.Load(a)
		if v != old {
			return v
		}
		t.m.events <- event{core: t.c.id, kind: evPark, line: a.Line(), word: a.word(), old: old}
		<-t.c.grant
	}
}

// WaitUntil blocks until pred holds for the word at a, with WaitChange
// semantics, and returns the satisfying value.
func (t *Thread) WaitUntil(a Addr, pred func(v uint64) bool) uint64 {
	v := t.Load(a)
	for !pred(v) {
		v = t.WaitChange(a, v)
	}
	return v
}

// Ops returns the number of memory operations this thread has issued.
func (t *Thread) Ops() uint64 { return t.c.ops }
