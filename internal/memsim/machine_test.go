package memsim

import (
	"testing"

	"ssync/internal/arch"
)

func TestSingleThreadLoadStore(t *testing.T) {
	m := New(arch.Opteron())
	a := m.AllocLine(0)
	m.Poke(a, 7)
	var got uint64
	m.Spawn(0, func(th *Thread) {
		got = th.Load(a) // Invalid → RAM fetch
		th.Store(a, 9)   // now Exclusive locally → cheap
		got += th.Load(a)
	})
	cycles := m.Run()
	if got != 7+9 {
		t.Fatalf("values: got %d", got)
	}
	p := m.Plat
	want := p.Lat(arch.Load, arch.Invalid, 0) + p.StoreLocal + p.L1
	if cycles != want {
		t.Fatalf("cycles = %d, want %d", cycles, want)
	}
}

func TestRemoteLoadCost(t *testing.T) {
	// Core 0 dirties a line; core 12 (one hop away on the Opteron) loads it.
	p := arch.Opteron()
	m := New(p)
	a := m.AllocLine(0)
	var c12cost uint64
	done := m.AllocLine(0)
	m.Spawn(0, func(th *Thread) {
		th.Store(a, 1) // I → M at core 0
		th.Store(done, 1)
	})
	m.Spawn(12, func(th *Thread) {
		th.WaitUntil(done, func(v uint64) bool { return v == 1 })
		start := th.Now()
		th.Load(a)
		c12cost = th.Now() - start
	})
	m.Run()
	class := p.DistClass(12, 0)
	want := p.Lat(arch.Load, arch.Modified, class)
	if c12cost != want {
		t.Fatalf("remote load = %d cycles, want %d (class %d)", c12cost, want, class)
	}
	// MOESI: after the remote load the line is Owned by core 0.
	st, owner := m.LineState(a)
	if st != arch.Owned || owner != 0 {
		t.Fatalf("line state = %v/%d, want Owned/0", st, owner)
	}
}

func TestXeonMESIFNoOwned(t *testing.T) {
	p := arch.Xeon()
	m := New(p)
	a := m.AllocLine(0)
	done := m.AllocLine(0)
	m.Spawn(0, func(th *Thread) {
		th.Store(a, 1)
		th.Store(done, 1)
	})
	m.Spawn(1, func(th *Thread) {
		th.WaitUntil(done, func(v uint64) bool { return v == 1 })
		th.Load(a)
	})
	m.Run()
	st, _ := m.LineState(a)
	if st != arch.Shared {
		t.Fatalf("Xeon M line after remote load = %v, want Shared", st)
	}
}

func TestStoreOnSharedBroadcastsOnOpteron(t *testing.T) {
	// Paper §5.2: "even if all sharers reside on the same node, a store
	// needs to pay the overhead of a broadcast ... from around 83 to 244".
	p := arch.Opteron()
	m := New(p)
	a := m.AllocLine(0)
	phase := m.AllocLine(0)
	var storeCost uint64
	m.Spawn(0, func(th *Thread) {
		th.Store(a, 1)
		th.Store(phase, 1)
		th.WaitUntil(phase, func(v uint64) bool { return v == 3 })
		start := th.Now()
		th.Store(a, 2) // line now Owned+Shared within the same die
		storeCost = th.Now() - start
	})
	m.Spawn(1, func(th *Thread) {
		th.WaitUntil(phase, func(v uint64) bool { return v == 1 })
		th.Load(a)
		th.Store(phase, 2)
	})
	m.Spawn(2, func(th *Thread) {
		th.WaitUntil(phase, func(v uint64) bool { return v == 2 })
		th.Load(a)
		th.Store(phase, 3)
	})
	m.Run()
	if storeCost < 200 {
		t.Fatalf("Opteron store on shared-within-die = %d cycles, want ≥200 (broadcast)", storeCost)
	}
	if m.Stats.Broadcasts == 0 {
		t.Fatal("no broadcast recorded")
	}

	// Ablation: with a complete directory the same store is cheap.
	m2 := New(p)
	m2.Opt.CompleteDirectory = true
	a2 := m2.AllocLine(0)
	ph2 := m2.AllocLine(0)
	var cost2 uint64
	m2.Spawn(0, func(th *Thread) {
		th.Store(a2, 1)
		th.Store(ph2, 1)
		th.WaitUntil(ph2, func(v uint64) bool { return v == 2 })
		start := th.Now()
		th.Store(a2, 2)
		cost2 = th.Now() - start
	})
	m2.Spawn(1, func(th *Thread) {
		th.WaitUntil(ph2, func(v uint64) bool { return v == 1 })
		th.Load(a2)
		th.Store(ph2, 2)
	})
	m2.Run()
	if cost2 >= storeCost {
		t.Fatalf("complete-directory ablation: store %d, want cheaper than %d", cost2, storeCost)
	}
}

func TestAtomics(t *testing.T) {
	m := New(arch.Niagara())
	a := m.AllocLine(0)
	var tas1, tas2, old, swapped uint64
	var casOK, casFail bool
	m.Spawn(0, func(th *Thread) {
		tas1 = th.TAS(a)
		tas2 = th.TAS(a)
		th.Store(a, 5)
		casOK = th.CAS(a, 5, 6)
		casFail = th.CAS(a, 5, 7)
		old = th.FAI(a)
		swapped = th.Swap(a, 100)
	})
	m.Run()
	if tas1 != 0 || tas2 != 1 {
		t.Errorf("TAS sequence: %d then %d, want 0 then 1", tas1, tas2)
	}
	if !casOK || casFail {
		t.Errorf("CAS: ok=%v fail=%v", casOK, casFail)
	}
	if old != 6 {
		t.Errorf("FAI returned %d, want 6", old)
	}
	if swapped != 7 {
		t.Errorf("Swap returned %d, want 7", swapped)
	}
	if m.Peek(a) != 100 {
		t.Errorf("final value %d, want 100", m.Peek(a))
	}
}

func TestFAACost(t *testing.T) {
	p := arch.Tilera()
	m := New(p)
	a := m.AllocLine(0)
	m.Spawn(0, func(th *Thread) {
		th.FAA(a, 41)
		th.FAA(a, 1)
	})
	m.Run()
	if m.Peek(a) != 42 {
		t.Fatalf("FAA result = %d, want 42", m.Peek(a))
	}
}

func TestWaitChangeWakesOnStore(t *testing.T) {
	m := New(arch.Xeon())
	a := m.AllocLine(0)
	var seen uint64
	m.Spawn(0, func(th *Thread) {
		th.Pause(10000)
		th.Store(a, 42)
	})
	m.Spawn(10, func(th *Thread) {
		th.Load(a) // cache it
		seen = th.WaitChange(a, 0)
	})
	cycles := m.Run()
	if seen != 42 {
		t.Fatalf("WaitChange returned %d, want 42", seen)
	}
	if cycles < 10000 {
		t.Fatalf("waiter must not finish before the writer (cycles=%d)", cycles)
	}
	if m.Stats.Wakeups == 0 {
		t.Fatal("no wakeup recorded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := New(arch.Opteron())
		a := m.AllocLine(0)
		for i := 0; i < 8; i++ {
			m.Spawn(i*6, func(th *Thread) {
				for k := 0; k < 200; k++ {
					th.FAI(a)
					th.Pause(uint64(10 + th.Core()))
				}
			})
		}
		total := m.Run()
		return total, m.Peek(a)
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", c1, v1, c2, v2)
	}
	if v1 != 8*200 {
		t.Fatalf("FAI lost updates: %d, want %d", v1, 8*200)
	}
}

func TestContentionSerializes(t *testing.T) {
	// Two cores hammering one line must take longer than the same work with
	// the contention model disabled.
	elapsed := func(noContention bool) uint64 {
		m := New(arch.Opteron())
		m.Opt.NoContention = noContention
		a := m.AllocLine(0)
		for i := 0; i < 2; i++ {
			m.Spawn(i, func(th *Thread) {
				for k := 0; k < 500; k++ {
					th.FAI(a)
				}
			})
		}
		return m.Run()
	}
	with, without := elapsed(false), elapsed(true)
	if with <= without {
		t.Fatalf("contention model has no effect: with=%d without=%d", with, without)
	}
}

func TestSpawnAndAllocValidation(t *testing.T) {
	m := New(arch.Tilera())
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("bad core", func() { m.Spawn(99, func(*Thread) {}) })
	mustPanic("bad node", func() { m.Alloc(5, 1) })
	m.Spawn(0, func(*Thread) {})
	mustPanic("double spawn", func() { m.Spawn(0, func(*Thread) {}) })
}

func TestDeadline(t *testing.T) {
	m := New(arch.Niagara())
	m.SetDeadline(5000)
	a := m.AllocLine(0)
	var iters int
	m.Spawn(0, func(th *Thread) {
		for !th.Done() {
			th.FAI(a)
		}
		iters = int(m.Peek(a))
	})
	m.Run()
	if iters == 0 {
		t.Fatal("thread did no work before the deadline")
	}
	if iters > 5000 {
		t.Fatalf("deadline ignored: %d iterations", iters)
	}
}

func TestPrefetchwPinsModified(t *testing.T) {
	p := arch.Opteron()
	m := New(p)
	a := m.AllocLine(0)
	m.Spawn(0, func(th *Thread) {
		th.Prefetchw(a)
		th.Store(a, 1) // must now be a local store
	})
	m.Run()
	st, owner := m.LineState(a)
	if st != arch.Modified || owner != 0 {
		t.Fatalf("after prefetchw+store: %v/%d, want Modified/0", st, owner)
	}
	// The store after prefetchw is local: total = prefetch txn + StoreLocal.
	if m.Stats.LocalHits == 0 {
		t.Fatal("store after prefetchw should hit locally")
	}
}

func TestAllocSeparatesLines(t *testing.T) {
	m := New(arch.Opteron())
	a := m.Alloc(0, 1)
	b := m.Alloc(0, 1)
	if a.Line() == b.Line() {
		t.Fatal("separate Allocs must not share a cache line")
	}
	c := m.Alloc(3, 8)
	if m.homeOf(c) != 3 {
		t.Fatalf("home node = %d, want 3", m.homeOf(c))
	}
}

func TestXeonInclusiveLLCLocality(t *testing.T) {
	// A load of a Shared line with an in-socket copy costs same-die cycles
	// even though another sharer is cross-socket.
	p := arch.Xeon()
	m := New(p)
	a := m.AllocLine(0)
	phase := m.AllocLine(0)
	var cost uint64
	m.Spawn(0, func(th *Thread) { // socket 0: creates + shares
		th.Store(a, 1)
		th.Store(phase, 1)
	})
	m.Spawn(70, func(th *Thread) { // socket 7: takes a copy
		th.WaitUntil(phase, func(v uint64) bool { return v == 1 })
		th.Load(a)
		th.Store(phase, 2)
	})
	m.Spawn(1, func(th *Thread) { // socket 0 again: in-socket load
		th.WaitUntil(phase, func(v uint64) bool { return v == 2 })
		start := th.Now()
		th.Load(a)
		cost = th.Now() - start
	})
	m.Run()
	want := p.Lat(arch.Load, arch.Shared, arch.XeonSameDie)
	if cost != want {
		t.Fatalf("inclusive-LLC load = %d, want %d", cost, want)
	}
}
