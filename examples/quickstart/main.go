// Quickstart: protect a shared counter with each of the nine libslock
// algorithms and compare their contended behaviour on this host.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ssync/internal/locks"
)

func main() {
	fmt.Printf("libslock quickstart — %d CPUs, %d goroutines hammering one counter\n\n",
		runtime.NumCPU(), goroutines)
	fmt.Printf("%-8s %12s %14s\n", "lock", "total ops", "ns/op")
	for _, alg := range locks.All {
		ops, elapsed := contend(alg)
		fmt.Printf("%-8s %12d %14.1f\n", alg, ops, float64(elapsed.Nanoseconds())/float64(ops))
	}
	fmt.Println("\nEvery algorithm guarantees mutual exclusion; their costs differ.")
	fmt.Println("On a many-core box, re-run with GOMAXPROCS sweeps to see the")
	fmt.Println("paper's contention effects (Figure 5) natively.")
}

const goroutines = 8
const opsPerG = 20000

// contend runs the increment workload under one lock algorithm.
func contend(alg locks.Algorithm) (int64, time.Duration) {
	l := locks.New(alg, locks.Options{MaxThreads: goroutines, Nodes: 2})
	var counter int64 // unsynchronised on purpose: the lock protects it
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok := l.NewToken(g % 2) // NUMA hint for the hierarchical locks
			for i := 0; i < opsPerG; i++ {
				l.Acquire(tok)
				counter++
				l.Release(tok)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if counter != goroutines*opsPerG {
		panic(fmt.Sprintf("%s lost updates: %d", alg, counter))
	}
	return counter, elapsed
}
