// Cluster: spin up a 3-node store cluster behind a consistent-hash
// ring, show that every key has exactly one owner node, and drive a
// batched pipelined routed client across the nodes — the repository's
// single-node scaling story (shards → engines → pipelining) extended
// past one process.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"time"

	"ssync/internal/cluster"
	"ssync/internal/store"
	"ssync/internal/workload"
)

const (
	nodes   = 3
	nKeys   = 9000
	clients = 4
	opsEach = 20000
)

func main() {
	c := cluster.New(cluster.Options{Nodes: nodes, Store: store.Options{Shards: 8}})
	defer c.Close()

	// Ownership: the ring partitions the key space — one owner per key.
	counts := make([]int, nodes)
	for i := uint64(0); i < nKeys; i++ {
		counts[c.Ring().Owner(workload.Key(i))]++
	}
	fmt.Printf("%d keys over %d nodes (%d virtual points each):\n", nKeys, nodes, c.Ring().Vnodes())
	for n, cnt := range counts {
		fmt.Printf("  node %d owns %5d keys (%4.1f%%)\n", n, cnt, 100*float64(cnt)/nKeys)
	}

	// Traffic: routed clients split each op group per owner node and
	// keep several groups in flight through every node's async window.
	scenario := workload.Scenario{
		Keys:     nKeys,
		Mix:      workload.Mix{Get: 90, Put: 10},
		Preload:  nKeys / 2,
		Phases:   []workload.Phase{{Name: "steady", Clients: clients, Ops: opsEach}},
		Batch:    8,
		Pipeline: 8,
	}
	start := time.Now()
	results, err := workload.Run(scenario, func(int) (workload.Conn, error) {
		return store.Driver{C: c.Dial(8)}, nil
	})
	if err != nil {
		panic(err)
	}
	steady := results[len(results)-1]
	fmt.Printf("\n%d routed clients, batch 8 × depth 8: %d ops in %v (%.1f Kops/s)\n",
		clients, steady.Ops, time.Since(start).Round(time.Millisecond), steady.Kops())
	fmt.Println("\nEvery key lives on one node and there in one shard, so per-key")
	fmt.Println("linearizability survives the cluster layer by construction.")
	fmt.Println("Run `ssync cluster -nodes 4` for the single-node-baseline comparison.")
}
