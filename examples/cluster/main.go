// Cluster: spin up a 3-node store cluster behind a consistent-hash
// ring, show that every key has exactly one owner node, drive a
// batched pipelined routed client across the nodes — the repository's
// single-node scaling story (shards → engines → pipelining) extended
// past one process — and then resize the cluster live: add a fourth
// node and retire an original one while the data stays put-able and
// get-able, watching how many keys each membership change moves.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"time"

	"ssync/internal/cluster"
	"ssync/internal/store"
	"ssync/internal/workload"
)

const (
	nodes   = 3
	nKeys   = 9000
	clients = 4
	opsEach = 20000
)

func main() {
	c := cluster.New(cluster.Options{Nodes: nodes, Store: store.Options{Shards: 8}})
	defer c.Close()

	// Ownership: the ring partitions the key space — one owner per key.
	counts := make([]int, nodes)
	for i := uint64(0); i < nKeys; i++ {
		counts[c.Ring().Owner(workload.Key(i))]++
	}
	fmt.Printf("%d keys over %d nodes (%d virtual points each):\n", nKeys, nodes, c.Ring().Vnodes())
	for n, cnt := range counts {
		fmt.Printf("  node %d owns %5d keys (%4.1f%%)\n", n, cnt, 100*float64(cnt)/nKeys)
	}

	// Traffic: routed clients split each op group per owner node and
	// keep several groups in flight through every node's async window.
	scenario := workload.Scenario{
		Keys:     nKeys,
		Mix:      workload.Mix{Get: 90, Put: 10},
		Preload:  nKeys / 2,
		Phases:   []workload.Phase{{Name: "steady", Clients: clients, Ops: opsEach}},
		Batch:    8,
		Pipeline: 8,
	}
	start := time.Now()
	results, err := workload.Run(scenario, func(int) (workload.Conn, error) {
		return store.Driver{C: c.Dial(8)}, nil
	})
	if err != nil {
		panic(err)
	}
	steady := results[len(results)-1]
	fmt.Printf("\n%d routed clients, batch 8 × depth 8: %d ops in %v (%.1f Kops/s)\n",
		clients, steady.Ops, time.Since(start).Round(time.Millisecond), steady.Kops())

	// Elastic membership: resize the loaded cluster live. AddNode streams
	// the arcs that change owner to the new node while the ring keeps
	// serving; RemoveNode drains a member the same way in reverse. A
	// sentinel key set written after the traffic (whose mix deletes a
	// share of the workload keys) proves the migrations lose nothing.
	cl := c.Dial(8)
	defer cl.Close()
	const sentinels = 1000
	sentinel := func(i int) string { return fmt.Sprintf("resize-demo-%04d", i) }
	for i := 0; i < sentinels; i++ {
		if _, err := cl.Put(sentinel(i), []byte(sentinel(i))); err != nil {
			panic(err)
		}
	}
	mustGet := func(key string) {
		v, ok, err := cl.Get(key)
		if err != nil || !ok || string(v) != key {
			panic(fmt.Sprintf("Get(%q) after resize: ok=%v err=%v", key, ok, err))
		}
	}
	countMoved := func(old *cluster.Ring) int {
		moved := 0
		for i := uint64(0); i < nKeys; i++ {
			if key := workload.Key(i); old.Owner(key) != c.Ring().Owner(key) {
				moved++
			}
		}
		return moved
	}

	before := c.Ring()
	start = time.Now()
	id, err := c.AddNode()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nAddNode → node %d in %v: %d of %d keys migrated (≈1/%d, the\n",
		id, time.Since(start).Round(time.Millisecond), countMoved(before), nKeys, nodes+1)
	fmt.Println("consistent-hashing promise — only the new node's arcs moved).")

	before = c.Ring()
	start = time.Now()
	if err := c.RemoveNode(0); err != nil {
		panic(err)
	}
	fmt.Printf("RemoveNode(0) in %v: %d keys migrated off; members now %v.\n",
		time.Since(start).Round(time.Millisecond), countMoved(before), c.Members())

	// Every sentinel survived both migrations, readable through the
	// routed client (retargeted automatically by the resizes).
	for i := 0; i < sentinels; i++ {
		mustGet(sentinel(i))
	}
	fmt.Printf("All %d sentinel keys intact after grow + shrink.\n", sentinels)

	fmt.Println("\nEvery key lives on one node and there in one shard — at every")
	fmt.Println("instant, across resizes — so per-key linearizability survives the")
	fmt.Println("cluster layer by construction (TestClusterLinearizableAcrossMigration).")
	fmt.Println("Run `ssync cluster -nodes 4` for the single-node-baseline comparison,")
	fmt.Println("and `ssync cluster -resize` to measure a live resize under load.")
}
