// Engines: build the same sharded key-value store on each shard-engine
// paradigm — lock-guarded, message-passing actors, optimistic reads —
// and print a tiny throughput comparison. This is the paper's
// locks-vs-atomics-vs-message-passing question asked of a whole store
// instead of a microbenchmark.
//
//	go run ./examples/engines
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssync/internal/store"
	"ssync/internal/workload"
	"ssync/internal/xrand"
)

const (
	goroutines = 8
	opsPerG    = 40000
	nKeys      = 4096
	getPct     = 95
)

func main() {
	fmt.Printf("shard engines — %d CPUs, %d goroutines, %d%% gets over %d keys\n\n",
		runtime.NumCPU(), goroutines, getPct, nKeys)
	fmt.Printf("%-12s %12s %12s\n", "engine", "total ops", "Kops/s")
	for _, eng := range store.Engines {
		ops, elapsed := drive(eng)
		fmt.Printf("%-12s %12d %12.1f\n", eng,
			ops, float64(ops)/elapsed.Seconds()/1e3)
	}
	fmt.Println("\nSame API, same data, three synchronization paradigms. Read-heavy")
	fmt.Println("mixes favor the optimistic engine (gets never lock); workloads that")
	fmt.Println("batch well amortize the actor engine's messages; the locked engine")
	fmt.Println("is the baseline every lock algorithm in internal/locks can tune.")
	fmt.Println("Run `ssync store -engine all` for the wire-protocol comparison.")
}

// drive runs the mixed workload against a fresh store on one engine.
func drive(eng store.Engine) (int64, time.Duration) {
	s := store.New(store.Options{Shards: 8, Engine: eng, MaxThreads: goroutines + 2})
	defer s.Close()
	pre := s.NewHandle(0)
	val := make([]byte, 64)
	for k := uint64(0); k < nKeys; k++ {
		pre.Put(workload.Key(k), val)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := s.NewHandle(g % 2)
			rng := xrand.New(uint64(g)*0x9e3779b97f4a7c15 + 1)
			for i := 0; i < opsPerG; i++ {
				k := workload.Key(rng.Uint64() % nKeys)
				if rng.Uint64()%100 < getPct {
					h.Get(k)
				} else {
					h.Put(k, val)
				}
			}
			total.Add(opsPerG)
		}()
	}
	wg.Wait()
	return total.Load(), time.Since(start)
}
