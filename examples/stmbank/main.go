// stmbank: concurrent bank transfers on TM2C, in both flavours — the
// lock-based STM and the message-passing design the paper built over
// libssmp. Money is conserved no matter how transactions interleave.
//
//	go run ./examples/stmbank
package main

import (
	"fmt"
	"sync"
	"time"

	"ssync/internal/tm"
	"ssync/internal/xrand"
)

const (
	accounts    = 64
	perAccount  = 1000
	tellers     = 6
	transfersEa = 5000
)

func main() {
	fmt.Println("TM2C bank — money is conserved under concurrent transfers")

	lockTM := tm.NewLockBased(accounts)
	d := driveRunners(func(int) runner { return lockTM })
	c, a := lockTM.Stats()
	fmt.Printf("  lock-based STM: %v, %d commits, %d aborts\n", d.Round(time.Millisecond), c, a)

	mpTM := tm.NewMessagePassing(accounts, 2, tellers)
	defer mpTM.Close()
	d = driveRunners(func(id int) runner { return mpTM.NewClient(id) })
	c, a = mpTM.Stats()
	fmt.Printf("  message-passing STM: %v, %d commits, %d aborts\n", d.Round(time.Millisecond), c, a)
}

type runner interface {
	Run(func(tm.Tx) error) error
}

// driveRunners funds the bank, runs the tellers and audits the total.
func driveRunners(runnerFor func(id int) runner) time.Duration {
	init := runnerFor(0)
	if err := init.Run(func(tx tm.Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Write(i, perAccount)
		}
		return nil
	}); err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < tellers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := runnerFor(g)
			rng := xrand.New(uint64(g)*31 + 5)
			for i := 0; i < transfersEa; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := rng.Uint64() % 20
				if err := r.Run(func(tx tm.Tx) error {
					balance := tx.Read(from)
					if balance < amount {
						return nil // declined, still a valid commit
					}
					tx.Write(from, balance-amount)
					tx.Write(to, tx.Read(to)+amount)
					return nil
				}); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total uint64
	audit := runnerFor(0)
	if err := audit.Run(func(tx tm.Tx) error {
		total = 0
		for i := 0; i < accounts; i++ {
			total += tx.Read(i)
		}
		return nil
	}); err != nil {
		panic(err)
	}
	if total != accounts*perAccount {
		panic(fmt.Sprintf("money not conserved: %d", total))
	}
	return elapsed
}
