// simstudy: drive the many-core simulator directly to answer a placement
// question the paper cares about — how much does thread placement change
// the throughput of one contended lock on the Opteron model? This is the
// experiment behind the paper's "if we do not explicitly pin the threads,
// the multi-sockets deliver 4 to 6 times lower maximum throughput".
//
//	go run ./examples/simstudy
package main

import (
	"fmt"

	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/xrand"
)

func main() {
	p := arch.Opteron()
	fmt.Printf("placement study on the %s model: 12 threads, one %s lock\n\n",
		p.Name, simlocks.TICKET)
	fmt.Printf("%-28s %10s\n", "placement", "Mops/s")
	fmt.Printf("%-28s %10.2f\n", "packed (2 dies, paper)", run(p, packed(p, 12)))
	fmt.Printf("%-28s %10.2f\n", "striped across all 8 dies", run(p, striped(p, 12)))
	fmt.Printf("%-28s %10.2f\n", "scattered (OS-style random)", run(p, scattered(p, 12)))
	fmt.Println("\nPacked placement keeps lock hand-overs inside a die;")
	fmt.Println("anything else pays cross-socket coherence on every hand-over.")
}

// packed fills dies in order — the paper's pinning policy.
func packed(p *arch.Platform, n int) []int { return p.PlaceThreads(n) }

// striped spreads threads round-robin across the dies.
func striped(p *arch.Platform, n int) []int {
	perDie := p.NumCores / p.NumNodes
	out := make([]int, n)
	for i := range out {
		out[i] = (i%p.NumNodes)*perDie + i/p.NumNodes
	}
	return out
}

// scattered picks distinct cores pseudo-randomly, like an unpinned OS
// schedule snapshot.
func scattered(p *arch.Platform, n int) []int {
	rng := xrand.New(42)
	perm := rng.Perm(p.NumCores)
	return perm[:n]
}

// run measures total acquisition throughput for a placement.
func run(p *arch.Platform, cores []int) float64 {
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	lock := simlocks.New(m, simlocks.TICKET, p.NodeOf(cores[0]), simlocks.DefaultOptions(p))
	data := m.AllocLine(p.NodeOf(cores[0]))
	const deadline = 400_000
	m.SetDeadline(deadline)
	for ti, c := range cores {
		rng := xrand.New(uint64(ti) + 9)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096)
			for !t.Done() {
				lock.Acquire(t)
				t.Store(data, t.Load(data)+1)
				lock.Release(t)
				t.Pause(100)
			}
		})
	}
	cycles := m.Run()
	// The protected counter is the acquisition count.
	return p.MopsFrom(m.Peek(data), cycles)
}
