// kvcache: use the memcached-like store as a session cache and reproduce
// the paper's §6.4 observation natively — under a write-heavy load the
// lock algorithm matters; under a read-mostly load it does not.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"

	"ssync/internal/kvs"
	"ssync/internal/locks"
)

func main() {
	fmt.Println("kvs session cache — lock algorithm vs workload mix")
	fmt.Printf("%-8s %16s %16s\n", "lock", "set-only Kops/s", "get-only Kops/s")
	for _, alg := range []locks.Algorithm{locks.MUTEX, locks.TAS, locks.TICKET, locks.MCS} {
		set := run(alg, 100)
		get := run(alg, 0)
		fmt.Printf("%-8s %16.1f %16.1f\n", alg, set, get)
	}

	fmt.Println("\nand the cache features themselves:")
	s := kvs.New(kvs.Options{Shards: 16, MaxItemsPerShard: 2, Lock: locks.TICKET})
	h := s.NewHandle(0)
	h.Set("session:alice", []byte(`{"cart":3}`), 2)
	h.Set("session:bob", []byte(`{"cart":1}`), 0)
	if v, ok := h.Get("session:alice"); ok {
		fmt.Printf("  alice = %s\n", v)
	}
	s.Tick()
	s.Tick() // alice's TTL of 2 ticks expires
	if _, ok := h.Get("session:alice"); !ok {
		fmt.Println("  alice expired after her TTL")
	}
	_, cas, _ := h.GetCas("session:bob")
	if h.Cas("session:bob", []byte(`{"cart":2}`), cas) {
		fmt.Println("  bob updated via CAS token")
	}
	if !h.Cas("session:bob", []byte(`{"cart":9}`), cas) {
		fmt.Println("  stale CAS rejected")
	}
}

func run(alg locks.Algorithm, setPercent int) float64 {
	s := kvs.New(kvs.Options{Shards: 64, Lock: alg})
	w := kvs.Workload{
		Clients:      6,
		SetPercent:   setPercent,
		Keys:         2000,
		ValueSize:    64,
		OpsPerClient: 8000,
	}
	return kvs.Run(s, w).Kops()
}
