// Histogram: a realistic ssht workload — many goroutines aggregate a
// stream of events into a shared hash table, in both synchronization
// styles the paper compares: per-bucket locks versus message-passing
// servers that own the data.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"sync"
	"time"

	"ssync/internal/locks"
	"ssync/internal/ssht"
	"ssync/internal/xrand"
)

const (
	workers   = 6
	events    = 40000
	keySpace  = 512
	hotKeys   = 8 // a skewed head makes the lock mode contend
	hotShare  = 60
	mpServers = 2
)

func main() {
	fmt.Println("event-count histogram over ssht — locks vs message passing")

	for _, alg := range []locks.Algorithm{locks.TICKET, locks.MCS, locks.TAS} {
		d, total := lockMode(alg)
		fmt.Printf("  locks/%-7s %8.1f Kevents/s (%d events)\n",
			alg, float64(total)/d.Seconds()/1e3, total)
	}
	d, total := mpMode()
	fmt.Printf("  mp (%d srv)    %8.1f Kevents/s (%d events)\n",
		mpServers, float64(total)/d.Seconds()/1e3, total)
}

// nextKey draws a skewed key: a hot head plus a uniform tail.
func nextKey(rng *xrand.Rand) uint64 {
	if rng.Intn(100) < hotShare {
		return uint64(rng.Intn(hotKeys))
	}
	return uint64(rng.Intn(keySpace))
}

// lockMode counts events under per-bucket locks with read-modify-write.
func lockMode(alg locks.Algorithm) (time.Duration, uint64) {
	table := ssht.New(ssht.Options{Buckets: 64, Lock: alg, MaxThreads: workers})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := table.NewHandle(w % 2)
			rng := xrand.New(uint64(w) + 7)
			for i := 0; i < events/workers; i++ {
				k := nextKey(rng)
				v, _ := h.Get(k)
				v[0]++
				h.Put(k, v)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify: the histogram total equals the event count.
	h := table.NewHandle(0)
	var total uint64
	for k := uint64(0); k < keySpace; k++ {
		if v, ok := h.Get(k); ok {
			total += v[0]
		}
	}
	if total != uint64(events/workers*workers) {
		panic(fmt.Sprintf("lost events under %s: %d", alg, total))
	}
	return elapsed, total
}

// mpMode counts events with server-owned buckets: the increment happens
// at the server, so there is no read-modify-write race to lock against —
// but note the server cannot express increments with the generic
// put/get API, so the client performs a round-trip per event, exactly the
// trade-off the paper describes for message passing.
func mpMode() (time.Duration, uint64) {
	s := ssht.NewServed(64, mpServers, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.NewClient(w)
			rng := xrand.New(uint64(w) + 7)
			for i := 0; i < events/workers; i++ {
				k := nextKey(rng)
				// Clients own disjoint key planes for the aggregate, so
				// cross-client read-modify-write is avoided by design: the
				// partitioning argument of the message-passing style.
				k |= uint64(w) << 32
				v, _ := c.Get(k)
				v[0]++
				c.Put(k, v)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	c := s.NewClient(0)
	var total uint64
	for w := 0; w < workers; w++ {
		for k := uint64(0); k < keySpace; k++ {
			if v, ok := c.Get(k | uint64(w)<<32); ok {
				total += v[0]
			}
		}
	}
	c.Close()
	if total != uint64(events/workers*workers) {
		panic(fmt.Sprintf("lost events in mp mode: %d", total))
	}
	return elapsed, total
}
